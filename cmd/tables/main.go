// Command tables regenerates the paper's Tables 1-12 (Section 7) and prints
// every row next to the published value.
//
// Usage:
//
//	tables [-table tableK] [-maxn 14] [-seed 1] [-cap 5] [-algo adaptive]
//	       [-warmup 500] [-measure 1500] [-policy first-free]
//	       [-jobs 4] [-budget 8] [-checkpoint sweep.jsonl] [-resume] [-progress]
//	       [-cache results.jsonl]
//
// The sweep runs through the internal/sweep orchestrator: cells are
// scheduled longest-first onto -jobs concurrent slots sharing a -budget
// worker pool, and -checkpoint/-resume journal completed cells so a killed
// sweep picks up where it left off. -cache FILE is shorthand for
// "-checkpoint FILE -resume": treat the journal as a persistent result
// cache, so repeated invocations replay completed cells instead of
// simulating them again. The full sweep up to n=14 (16K nodes)
// costs a few core-hours of simulation, dominated by the dynamic (λ=1)
// experiments — run it with -jobs set to the core count; -maxn 12 finishes
// in a few minutes even sequentially and already shows every trend.
//
// Table output is written to stdout and is bit-identical for any -jobs
// value (and across a kill/-resume cycle); timings and -progress status
// lines go to stderr so stdout stays clean for diffing.
//
// Exit codes: 0 success, 1 simulation error, 2 usage, 3 stopped early by
// -stop-after (the checkpoint holds the completed cells).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	var (
		table      = flag.String("table", "", "run a single experiment (table1..table12 or an ext-* id); default all")
		suite      = flag.String("suite", "paper", "experiment suite: paper (Tables 1-12) | extended (mesh/torus/shuffle/CCC) | all")
		maxN       = flag.Int("maxn", 14, "largest hypercube dimension to simulate")
		seed       = flag.Int64("seed", 1, "simulation seed")
		cap_       = flag.Int("cap", 5, "central queue capacity (paper: 5)")
		algo       = flag.String("algo", "adaptive", "algorithm variant: adaptive|hung|ecube")
		warmup     = flag.Int64("warmup", 500, "dynamic runs: warmup cycles")
		measure    = flag.Int64("measure", 1500, "dynamic runs: measured cycles")
		policy     = flag.String("policy", "first-free", "selection policy: first-free|random|static-first|last-free")
		workers    = flag.Int("workers", 0, "force this many workers per simulation (0 = let the scheduler decide)")
		engine     = flag.String("engine", "buffered", "simulation model: buffered (paper's node model) | atomic (Section 2)")
		jobs       = flag.Int("jobs", 1, "concurrent experiment cells")
		budget     = flag.Int("budget", 0, "total worker budget across cells (0 = GOMAXPROCS)")
		checkpoint = flag.String("checkpoint", "", "JSONL checkpoint journal; completed cells append here")
		resume     = flag.Bool("resume", false, "skip cells already in -checkpoint (same seed/options/build only)")
		progress   = flag.Bool("progress", false, "live per-cell status with ETA on stderr")
		stopAfter  = flag.Int("stop-after", 0, "stop (exit 3) after completing this many cells; for checkpoint testing")
		benchOut   = flag.String("bench", "", "append sweep wall-clock record to this JSON file")
		benchLabel = flag.String("bench-label", "", "label for the -bench record")
		cache      = flag.String("cache", "", "result cache file: shorthand for -checkpoint FILE -resume (completed cells persist and replay across runs)")
		rebalance  = flag.Int("rebalance", 0, "occupancy-weighted shard re-cut period in cycles (0 = off; buffered cells with workers > 1)")
		tmodel     = flag.String("traffic", "", "override the injection model of dynamic cells for ablations: mmpp[:...]|onoff[:...] (default: the paper's Bernoulli process); static cells are unaffected")
		scalingOut = flag.String("scaling", "", "scaling mode: rerun the sweep once per -scaling-jobs value and append a cells/s curve to this JSON file")
		scalingJob = flag.String("scaling-jobs", "1,2", "scaling mode: comma-separated -jobs values to sweep")
	)
	flag.Parse()

	opt := bench.Options{
		Seed:           *seed,
		QueueCap:       *cap_,
		Warmup:         *warmup,
		Measure:        *measure,
		Algorithm:      *algo,
		Engine:         *engine,
		RebalanceEvery: *rebalance,
		Traffic:        *tmodel,
	}
	p, err := sim.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(2)
	}
	opt.Policy = p
	if *engine == "atomic" && *workers > 1 {
		// The RunSpec path rejects this combination rather than silently
		// ignoring Workers; surface the same rule at the flag layer.
		fmt.Fprintln(os.Stderr, "tables: -workers > 1 with -engine atomic: the atomic engine is inherently sequential; drop -workers or use -engine buffered")
		os.Exit(2)
	}

	jobList, err := sweep.BuildJobs(*suite, *table, *maxN, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *cache != "" {
		// -cache FILE is the content-addressed spelling of the checkpoint
		// machinery: persist completed cells and replay them on the next run.
		if *checkpoint != "" && *checkpoint != *cache {
			fmt.Fprintln(os.Stderr, "tables: -cache and -checkpoint name different files; pick one")
			os.Exit(2)
		}
		*checkpoint = *cache
		*resume = true
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "tables: -resume requires -checkpoint (or use -cache)")
		os.Exit(2)
	}

	if *budget == 0 {
		*budget = runtime.GOMAXPROCS(0)
	}
	so := sweep.Options{
		Jobs:         *jobs,
		Budget:       *budget,
		FixedWorkers: *workers,
		Checkpoint:   *checkpoint,
		Resume:       *resume,
		StopAfter:    *stopAfter,
	}
	if *progress {
		so.Sink = obs.NewSweepProgress(os.Stderr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *scalingOut != "" {
		os.Exit(runScalingSweep(ctx, jobList, opt, so, *scalingOut, *scalingJob,
			*benchLabel, *suite, *maxN, *engine, *rebalance))
	}

	start := time.Now()
	results, err := sweep.Run(ctx, jobList, opt, so)
	wall := time.Since(start)
	switch {
	case errors.Is(err, sweep.ErrStopped):
		fmt.Fprintf(os.Stderr, "tables: stopped after %d cells (checkpoint %s); rerun with -resume\n",
			*stopAfter, *checkpoint)
		os.Exit(3)
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "tables: interrupted; rerun with -resume to continue")
		os.Exit(1)
	case err != nil:
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}

	printResults(results)
	fmt.Fprintf(os.Stderr, "tables: %d cells in %s\n", len(results), wall.Round(time.Millisecond))

	if *benchOut != "" {
		cached := 0
		for _, r := range results {
			if r.Cached {
				cached++
			}
		}
		rec := bench.SweepBenchRun{
			Label: *benchLabel, Date: time.Now().UTC().Format("2006-01-02"),
			Suite: *suite, Table: *table, MaxN: *maxN,
			Jobs: so.Jobs, Budget: so.Budget, GOMAXPROCS: runtime.GOMAXPROCS(0),
			Engine: *engine, Cells: len(results), Cached: cached,
			WallSec: wall.Seconds(), BuildID: sweep.BuildID(),
		}
		if err := bench.AppendSweepBench(*benchOut, rec); err != nil {
			fmt.Fprintf(os.Stderr, "tables: bench record: %v\n", err)
			os.Exit(1)
		}
	}
}

// runScalingSweep is the sweep-level scaling protocol: the same job list is
// executed once per -scaling-jobs value and the resulting cells/s curve is
// appended to the scaling artifact (kind "sweep"). Table output is
// suppressed — the mode measures orchestration throughput, and the rows are
// bit-identical across jobs counts anyway (CI diffs them separately).
func runScalingSweep(ctx context.Context, jobList []sweep.Job, opt bench.Options,
	so sweep.Options, out, jobsCSV, label, suite string, maxN int, engine string, rebalance int) int {
	if label == "" {
		label = "dev"
	}
	run := bench.ScalingRun{
		Label: label, Kind: "sweep", Engine: engine,
		Suite: suite, MaxN: maxN, RebalanceEvery: rebalance,
		Seed: opt.Seed,
	}
	run.HostStamp()
	for _, j := range parseJobsList(jobsCSV) {
		sj := so
		sj.Jobs = j
		// Each point re-runs the full sweep; a shared checkpoint would turn
		// every point after the first into cache hits and time nothing.
		sj.Checkpoint, sj.Resume = "", false
		start := time.Now()
		results, err := sweep.Run(ctx, jobList, opt, sj)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: scaling jobs=%d: %v\n", j, err)
			return 1
		}
		run.Points = append(run.Points, bench.ScalingPoint{
			Workers:     j,
			Cells:       len(results),
			ElapsedSec:  wall.Seconds(),
			CellsPerSec: float64(len(results)) / wall.Seconds(),
		})
		fmt.Fprintf(os.Stderr, "tables: scaling jobs=%d: %d cells in %s\n",
			j, len(results), wall.Round(time.Millisecond))
	}
	bench.FinishCurve(run.Points)
	if err := bench.AppendScaling(out, run); err != nil {
		fmt.Fprintf(os.Stderr, "tables: scaling record: %v\n", err)
		return 1
	}
	fmt.Print(bench.FormatScaling(run))
	fmt.Printf("appended scaling run %q to %s\n", label, out)
	return 0
}

// parseJobsList parses the -scaling-jobs list, exiting on malformed input.
func parseJobsList(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "tables: bad -scaling-jobs entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "tables: -scaling-jobs lists no jobs values")
		os.Exit(2)
	}
	return out
}

// printResults renders the merged results in canonical order: one Format
// block per experiment, rows grouped exactly as the sequential loop printed
// them. Results arrive indexed by Seq, so the grouping is a single pass.
func printResults(results []sweep.Result) {
	for i := 0; i < len(results); {
		j := i
		for j < len(results) && results[j].Job.Exp == results[i].Job.Exp {
			j++
		}
		rows := make([]bench.Row, 0, j-i)
		for _, r := range results[i:j] {
			rows = append(rows, r.Row)
		}
		switch results[i].Job.Suite {
		case sweep.SuitePaper:
			ex, err := bench.FindTable(results[i].Job.Exp)
			if err == nil {
				fmt.Print(ex.Format(rows))
			}
		case sweep.SuiteExtended:
			ex, err := bench.FindExtended(results[i].Job.Exp)
			if err == nil {
				fmt.Print(ex.Format(rows))
			}
		}
		fmt.Println()
		i = j
	}
}
