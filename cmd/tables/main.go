// Command tables regenerates the paper's Tables 1-12 (Section 7) and prints
// every row next to the published value.
//
// Usage:
//
//	tables [-table tableK] [-maxn 14] [-seed 1] [-cap 5] [-algo adaptive]
//	       [-warmup 500] [-measure 1500] [-policy first-free]
//
// The full sweep up to n=14 (16K nodes) takes tens of minutes on one core,
// dominated by the dynamic (λ=1) experiments; -maxn 12 finishes in a few
// minutes and already shows every trend.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/sim"
)

func main() {
	var (
		table   = flag.String("table", "", "run a single experiment (table1..table12 or an ext-* id); default all")
		suite   = flag.String("suite", "paper", "experiment suite: paper (Tables 1-12) | extended (mesh/torus/shuffle/CCC) | all")
		maxN    = flag.Int("maxn", 14, "largest hypercube dimension to simulate")
		seed    = flag.Int64("seed", 1, "simulation seed")
		cap_    = flag.Int("cap", 5, "central queue capacity (paper: 5)")
		algo    = flag.String("algo", "adaptive", "algorithm variant: adaptive|hung|ecube")
		warmup  = flag.Int64("warmup", 500, "dynamic runs: warmup cycles")
		measure = flag.Int64("measure", 1500, "dynamic runs: measured cycles")
		policy  = flag.String("policy", "first-free", "selection policy: first-free|random|static-first")
		workers = flag.Int("workers", 0, "parallel workers per simulation (0 = sequential)")
		engine  = flag.String("engine", "buffered", "simulation model: buffered (paper's node model) | atomic (Section 2)")
	)
	flag.Parse()

	opt := bench.Options{
		Seed:      *seed,
		QueueCap:  *cap_,
		Warmup:    *warmup,
		Measure:   *measure,
		Algorithm: *algo,
		Workers:   *workers,
		Engine:    *engine,
	}
	switch *policy {
	case "first-free":
		opt.Policy = sim.PolicyFirstFree
	case "random":
		opt.Policy = sim.PolicyRandom
	case "static-first":
		opt.Policy = sim.PolicyStaticFirst
	case "last-free":
		opt.Policy = sim.PolicyLastFree
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	runPaper := func(ex bench.Experiment) {
		start := time.Now()
		rows, err := ex.RunAll(*maxN, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(ex.Format(rows))
		fmt.Printf("  [%s]\n\n", time.Since(start).Round(time.Millisecond))
	}
	runExt := func(ex bench.Extended) {
		start := time.Now()
		rows, err := ex.RunAll(0, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(ex.Format(rows))
		fmt.Printf("  [%s]\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *table != "" {
		if ex, err := bench.FindTable(*table); err == nil {
			runPaper(ex)
			return
		}
		ex, err := bench.FindExtended(*table)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runExt(ex)
		return
	}
	if *suite == "paper" || *suite == "all" {
		for _, ex := range bench.Tables() {
			runPaper(ex)
		}
	}
	if *suite == "extended" || *suite == "all" {
		for _, ex := range bench.ExtendedSuite() {
			runExt(ex)
		}
	}
}
