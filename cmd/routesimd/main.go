// Command routesimd serves simulations over HTTP: POST a JSON RunSpec to
// /v1/sim and get the run's metrics back, content-addressed by the spec's
// fingerprint so identical specs after the first are served from the result
// store without simulating.
//
//	routesimd -addr :8080 -cache results.jsonl -jobs 4 -budget 8
//
//	curl -s localhost:8080/v1/sim -d '{"v":1,"algo":"hypercube-adaptive:6","seed":1}'
//
// Progress streams as SSE with -H 'Accept: text/event-stream' (or
// ?stream=sse); /metrics is Prometheus text; /debug/pprof is mounted.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.String("cache", "", "result store backing file (JSONL, append-only); empty = in-memory only")
	lru := flag.Int("lru", 0, "max results held in memory (0 = unbounded; evicted results re-simulate)")
	jobs := flag.Int("jobs", 1, "max concurrently executing simulations")
	budget := flag.Int("budget", runtime.GOMAXPROCS(0), "total worker budget split across executing simulations")
	queue := flag.Int("queue", 16, "pending-request queue capacity; beyond it requests get 429")
	maxCost := flag.Float64("maxcost", 0, "reject specs above this estimated cost in node-cycles (0 = no limit)")
	runTimeout := flag.Duration("run-timeout", 0, "wall-clock bound per simulation (0 = unbounded)")
	flag.Parse()

	st, err := store.Open(*cache, store.Options{LRUCap: *lru})
	if err != nil {
		log.Fatalf("routesimd: open store: %v", err)
	}
	defer st.Close()

	srv, err := daemon.New(daemon.Config{
		Store:      st,
		Jobs:       *jobs,
		Budget:     *budget,
		QueueCap:   *queue,
		MaxCost:    *maxCost,
		RunTimeout: *runTimeout,
	})
	if err != nil {
		log.Fatalf("routesimd: %v", err)
	}
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "routesimd: shutting down")
		hs.Close()
	}()
	log.Printf("routesimd: listening on %s (store %q, %d entries)", *addr, *cache, st.Len())
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("routesimd: %v", err)
	}
}
