// Command routesim runs a single packet-routing simulation with full control
// over the algorithm, traffic and node parameters, and prints the measured
// metrics. It is the general-purpose driver behind the paper's experiments.
//
// Examples:
//
//	routesim -algo hypercube-adaptive:10 -pattern random -inject dynamic -lambda 1
//	routesim -algo mesh-adaptive:16x16 -pattern mesh-transpose -inject static -packets 8
//	routesim -algo shuffle-adaptive:10 -pattern random -inject static -packets 4 -engine atomic
//	routesim -algo torus-adaptive:8x8 -pattern random -inject dynamic -lambda 0.4
//	routesim -algo hypercube-adaptive:8 -inject dynamic -traffic mmpp:on=0.9,off=0.05
//	routesim -algo hypercube-adaptive:6 -inject dynamic -record run.jsonl
//	routesim -algo hypercube-adaptive:6 -inject dynamic -traffic trace:run.jsonl
//	routesim -algo hypercube-adaptive:6 -advsearch -lambda 0.5 -adviters 40
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
	"repro/internal/bench"
)

func main() {
	var (
		algoSpec  = flag.String("algo", "hypercube-adaptive:8", "algorithm spec, e.g. hypercube-adaptive:10, mesh-adaptive:16x16 (see -list)")
		list      = flag.Bool("list", false, "list known algorithm specs and exit")
		pattern   = flag.String("pattern", "random", "traffic pattern: random|complement|transpose|leveled|bit-reversal|mesh-transpose|hotspot:<frac>")
		inject    = flag.String("inject", "static", "injection model: static|dynamic")
		packets   = flag.Int("packets", 1, "static model: packets per node")
		lambda    = flag.Float64("lambda", 1.0, "dynamic model: per-cycle injection probability")
		tmodel    = flag.String("traffic", "", "dynamic traffic model: bernoulli|mmpp:on=,off=,p10=,p01=|onoff:hi=,lo=,period=,on=|trace:<path> (trace also replays under -inject static)")
		record    = flag.String("record", "", "record the run's injections as trace JSONL to this file (replay with -traffic trace:<file>)")
		warmup    = flag.Int64("warmup", 500, "dynamic model: warmup cycles")
		measure   = flag.Int64("measure", 1500, "dynamic model: measured cycles")
		seed      = flag.Int64("seed", 1, "simulation seed")
		cap_      = flag.Int("cap", 5, "central queue capacity")
		policy    = flag.String("policy", "first-free", "selection policy: first-free|random|static-first")
		engine    = flag.String("engine", "buffered", "engine: buffered (Sections 6-7 node model) | atomic (Section 2 model) | wormhole (flit-level, use a wh-* algo)")
		flits     = flag.Int("flits", 8, "wormhole engine: flits per worm")
		vcbuf     = flag.Int("vcbuf", 2, "wormhole engine: flit buffer per virtual channel")
		workers   = flag.Int("workers", 1, "parallel workers for the buffered engine")
		verify    = flag.Bool("verify", false, "verify deadlock freedom via the QDG checker first (small networks only)")
		hist      = flag.Bool("hist", false, "print a latency histogram and percentiles")
		vct       = flag.Bool("vct", false, "virtual cut-through switching [KK79] instead of store-and-forward")
		maxCyc    = flag.Int64("maxcycles", 10_000_000, "static model: abort after this many cycles")
		faults    = flag.String("faults", "", "fault schedule, e.g. 'link:0:1@50,node:3@100+200,links:0.05@0' (packet engines only)")
		killLinks = flag.Float64("kill-links", 0, "kill this fraction of links at cycle 0 (seeded; shorthand for -faults links:<p>@0)")
		hopBudget = flag.Int("hop-budget", 0, "extra hops a fault-misrouted packet may take before being dropped (0 = default)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		advsearch = flag.Bool("advsearch", false, "adversarial mode: hill-climb over fixed permutations for the worst-case p99 latency of -algo, then exit")
		adviters  = flag.Int("adviters", 40, "adversarial mode: hill-climb iterations")
		advswaps  = flag.Int("advswaps", 0, "adversarial mode: transpositions per mutation (0 = nodes/64)")
		metrics   = flag.String("metrics", "", "write metric snapshots as JSON lines to this file ('-' for stdout)")
		mEvery    = flag.Int64("metrics-every", 100, "sampling period of -metrics, in cycles")
		httpAddr  = flag.String("http", "", "serve Prometheus /metrics and /debug/pprof on this address during the run, e.g. :6060")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fatal(f.Close())
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			fatal(err)
			runtime.GC() // flush recently-freed allocations out of the profile
			fatal(pprof.WriteHeapProfile(f))
			fatal(f.Close())
		}()
	}

	if *list {
		fmt.Println("packet algorithm specs:")
		for _, s := range repro.AlgorithmNames() {
			fmt.Println("  " + s)
		}
		fmt.Println("wormhole route specs (flit-level engine):")
		for _, s := range repro.WormholeRouteNames() {
			fmt.Println("  " + s)
		}
		return
	}

	if *advsearch {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		res, err := bench.RunAdversary(ctx, bench.AdversaryConfig{
			AlgoSpec: *algoSpec,
			Engine:   *engine,
			Lambda:   *lambda,
			Warmup:   *warmup,
			Measure:  *measure,
			Workers:  *workers,
			Iters:    *adviters,
			Swaps:    *advswaps,
			Seed:     *seed,
		})
		fatal(err)
		fmt.Print(bench.FormatAdversary(res))
		return
	}
	if *engine == "wormhole" || strings.HasPrefix(*algoSpec, "wh-") {
		runWormhole(*algoSpec, *pattern, *inject, *packets, *lambda, *warmup, *measure, *seed, *flits, *vcbuf, *verify, *maxCyc)
		return
	}
	algo, err := repro.NewAlgorithm(*algoSpec)
	fatal(err)
	if *verify {
		start := time.Now()
		fatal(repro.VerifyDeadlockFree(algo))
		fmt.Printf("qdg: %s certified deadlock-free [%s]\n", algo.Name(), time.Since(start).Round(time.Millisecond))
	}
	pat, err := repro.NewPattern(*pattern, algo, *seed)
	fatal(err)

	cfg := repro.Config{
		Algorithm: algo,
		QueueCap:  *cap_,
		Seed:      *seed,
		Workers:   *workers,
	}
	cfg.CutThrough = *vct

	faultSpec := *faults
	if *killLinks > 0 {
		spec := fmt.Sprintf("links:%g@0", *killLinks)
		if faultSpec != "" {
			faultSpec += "," + spec
		} else {
			faultSpec = spec
		}
	}
	if faultSpec != "" {
		plan, err := repro.ParseFaultSpec(faultSpec)
		fatal(err)
		cfg.Faults = plan
		cfg.HopBudget = *hopBudget
	}

	// Observability: compose the requested observers; -http additionally
	// enables the metrics core so the endpoint has something to serve.
	var observers []repro.Observer
	var collector *repro.LatencyObserver
	if *hist {
		collector = repro.NewLatencyObserver()
		observers = append(observers, collector)
	}
	var jsonl *repro.JSONLObserver
	if *metrics != "" {
		w := os.Stdout
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			fatal(err)
			defer func() { fatal(f.Close()) }()
			w = f
		}
		jsonl = repro.NewJSONLObserver(w, *mEvery)
		observers = append(observers, jsonl)
	}
	cfg.Observer = repro.MultiObserver(observers...)
	if *httpAddr != "" {
		cfg.Metrics = true
	}
	cfg.Policy, err = repro.ParsePolicy(*policy)
	fatal(err)

	// Build the engine up front so -http can expose its live metrics core.
	sim, err := repro.NewSimulator(*engine, cfg)
	fatal(err)
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", sim.Obs().Handler())
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		go func() { fatal(http.ListenAndServe(*httpAddr, mux)) }()
		fmt.Printf("serving   : http://%s/metrics and /debug/pprof/\n", *httpAddr)
	}

	plan := repro.StaticPlan(*maxCyc)
	var src repro.TrafficSource
	switch strings.ToLower(*inject) {
	case "static":
		if *tmodel != "" && !strings.HasPrefix(*tmodel, "trace:") {
			fatal(fmt.Errorf("traffic model %q generates open-loop traffic and needs -inject dynamic (only trace:<path> replays under static)", *tmodel))
		}
		if strings.HasPrefix(*tmodel, "trace:") {
			src, err = repro.NewTrafficSource(*tmodel, pat, algo, *lambda, *seed+1)
			fatal(err)
		} else {
			src = repro.NewStaticTraffic(pat, algo, *packets, *seed+1)
		}
	case "dynamic":
		if *tmodel != "" {
			src, err = repro.NewTrafficSource(*tmodel, pat, algo, *lambda, *seed+1)
			fatal(err)
		} else {
			src = repro.NewDynamicTraffic(pat, algo, *lambda, *seed+1)
		}
		plan = repro.DynamicPlan(*warmup, *measure)
	default:
		fatal(fmt.Errorf("unknown injection model %q", *inject))
	}
	var recording *repro.RecordingSource
	if *record != "" {
		f, err := os.Create(*record)
		fatal(err)
		defer func() { fatal(f.Close()) }()
		recording = repro.NewRecordingTraffic(src, f)
		src = recording
	}

	// Ctrl-C cancels the run within one cycle; the partial metrics of the
	// completed cycles are still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	res, err := sim.Run(ctx, src, plan)
	if !res.Canceled {
		if derr := (*repro.ErrDeadlock)(nil); errors.As(err, &derr) && derr.Dump != nil {
			fmt.Fprintln(os.Stderr, derr.Dump)
		}
		fatal(err)
	}
	m := res.Metrics
	elapsed := time.Since(start).Round(time.Millisecond)
	if recording != nil {
		fatal(recording.Flush())
	}
	if errSrc, ok := src.(interface{ Err() error }); ok {
		fatal(errSrc.Err())
	}
	if res.Canceled {
		fmt.Printf("interrupted after %d cycles; partial metrics follow\n", m.Cycles)
	}

	fmt.Printf("algorithm : %s on %s (%d queues/node, %s engine, policy %s)\n",
		algo.Name(), algo.Topology().Name(), algo.NumClasses(), *engine, cfg.Policy)
	fmt.Printf("traffic   : %s, %s", pat.Name(), *inject)
	if *tmodel != "" {
		fmt.Printf(" model=%s", *tmodel)
	}
	if strings.EqualFold(*inject, "dynamic") {
		fmt.Printf(" lambda=%g warmup=%d measure=%d", *lambda, *warmup, *measure)
	} else if *tmodel == "" {
		fmt.Printf(" packets/node=%d", *packets)
	}
	fmt.Println()
	fmt.Printf("cycles    : %d  [%s]\n", m.Cycles, elapsed)
	fmt.Printf("packets   : injected=%d delivered=%d in-flight=%d", m.Injected, m.Delivered, m.InFlight)
	if faultSpec != "" {
		fmt.Printf(" dropped=%d (faults: %s)", m.Dropped, faultSpec)
	}
	fmt.Println()
	fmt.Printf("latency   : avg=%.2f max=%d (over %d measured deliveries)\n", m.AvgLatency(), m.LatencyMax, m.Measured)
	if m.Attempts > 0 {
		fmt.Printf("inj. rate : %.1f%% (%d/%d attempts)\n", 100*m.InjectionRate(), m.Successes, m.Attempts)
	}
	fmt.Printf("movement  : %d moves, %d over dynamic links (%.1f%%), max queue occupancy %d\n",
		m.Moves, m.DynamicMoves, pct(m.DynamicMoves, m.Moves), m.MaxQueue)
	if collector != nil {
		fmt.Printf("histogram : %s\n%s", collector.Summary(), collector.Histogram(16))
	}
	if jsonl != nil {
		fatal(jsonl.Err())
		fmt.Printf("metrics   : %d JSONL records -> %s\n", jsonl.Lines(), *metrics)
	}
	if recording != nil {
		fmt.Printf("recorded  : %d injections -> %s\n", recording.TotalTaken(), *record)
	}
}

// runWormhole drives the flit-level engine for wh-* algorithm specs.
func runWormhole(algoSpec, pattern, inject string, packets int, lambda float64, warmup, measure, seed int64, flits, vcbuf int, verify bool, maxCyc int64) {
	route, err := repro.NewWormholeRoute(algoSpec)
	fatal(err)
	if verify {
		fatal(repro.VerifyWormholeDeadlockFree(route))
		fmt.Printf("cdg: %s certified deadlock-free\n", route.Name())
	}
	// Patterns are built against a packet algorithm on the same topology.
	var likeSpec string
	switch {
	case strings.HasPrefix(algoSpec, "wh-hypercube"):
		likeSpec = "hypercube-adaptive:" + strings.SplitN(algoSpec, ":", 2)[1]
	default:
		side := strings.SplitN(algoSpec, ":", 2)[1]
		likeSpec = "torus-adaptive:" + side + "x" + side
	}
	like, err := repro.NewAlgorithm(likeSpec)
	fatal(err)
	pat, err := repro.NewPattern(pattern, like, seed)
	fatal(err)
	eng, err := repro.NewWormholeEngine(repro.WormholeConfig{Route: route, Flits: flits, VCBuf: vcbuf, Seed: seed})
	fatal(err)
	var m repro.WormholeMetrics
	start := time.Now()
	if strings.EqualFold(inject, "dynamic") {
		m, err = eng.RunDynamic(repro.NewDynamicTraffic(pat, like, lambda, seed+1), warmup, measure)
	} else {
		m, err = eng.RunStatic(repro.NewStaticTraffic(pat, like, packets, seed+1), maxCyc)
	}
	fatal(err)
	fmt.Printf("route     : %s on %s (%d VCs/link, %d flits/worm, vcbuf %d)\n",
		route.Name(), route.Topology().Name(), route.NumVCs(), flits, vcbuf)
	fmt.Printf("cycles    : %d  [%s]\n", m.Cycles, time.Since(start).Round(time.Millisecond))
	fmt.Printf("worms     : injected=%d delivered=%d in-flight=%d\n", m.Injected, m.Delivered, m.InFlight)
	fmt.Printf("latency   : full avg=%.2f max=%d, header avg=%.2f\n", m.AvgLatency(), m.LatencyMax, m.AvgHeaderLatency())
	if strings.EqualFold(inject, "dynamic") && m.Attempts > 0 {
		fmt.Printf("inj. rate : %.1f%%\n", 100*m.InjectionRate())
	}
	fmt.Printf("channels  : %d adaptive / %d escape allocations, %d flit moves\n",
		m.AdaptAlloc, m.EscapeAlloc, m.FlitMoves)
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}
}
